package acp

import (
	"repro/internal/rts"
)

// Shared object types for the ACP program. The domain object holds
// the array of value sets ("This object thus contains an array of
// sets, one for each variable"); the work object holds the recheck
// flags plus the indivisible claim/idle operations the termination
// protocol needs.

// Type names registered by RegisterTypes.
const (
	DomainObj = "acp.domains"
	WorkObj   = "acp.work"
)

// RegisterTypes adds the ACP object types to a registry.
func RegisterTypes(reg *rts.Registry) {
	reg.Register(domainType())
	reg.Register(workType())
}

type domainState struct{ masks []uint64 }

func domainType() *rts.ObjectType {
	return &rts.ObjectType{
		Name: DomainObj,
		New: func(args []any) rts.State {
			n, full := args[0].(int), args[1].(uint64)
			s := &domainState{masks: make([]uint64, n)}
			for i := range s.masks {
				s.masks[i] = full
			}
			return s
		},
		Clone: func(s rts.State) rts.State {
			return &domainState{masks: append([]uint64(nil), s.(*domainState).masks...)}
		},
		SizeOf: func(s rts.State) int { return 8 + 8*len(s.(*domainState).masks) },
		Ops: map[string]*rts.OpDef{
			"get": {Name: "get", Kind: rts.Read,
				Apply: func(s rts.State, a []any) []any {
					return []any{s.(*domainState).masks[a[0].(int)]}
				}},
			// get2 reads two domains in one indivisible operation, the
			// pair a revise needs.
			"get2": {Name: "get2", Kind: rts.Read,
				Apply: func(s rts.State, a []any) []any {
					st := s.(*domainState)
					return []any{st.masks[a[0].(int)], st.masks[a[1].(int)]}
				}},
			// remove deletes the given values from a variable's set
			// and reports (newMask, becameEmpty).
			"remove": {Name: "remove", Kind: rts.Write,
				Apply: func(s rts.State, a []any) []any {
					st := s.(*domainState)
					i, mask := a[0].(int), a[1].(uint64)
					st.masks[i] &^= mask
					return []any{st.masks[i], st.masks[i] == 0}
				}},
			"snapshot": {Name: "snapshot", Kind: rts.Read,
				Apply: func(s rts.State, _ []any) []any {
					return []any{append([]uint64(nil), s.(*domainState).masks...)}
				}},
		},
	}
}

// workState combines the per-variable recheck flags with the
// termination bookkeeping: which workers are idle and whether the
// computation is finished. Orca guards range over a single object, so
// the blocking claim must see both the flags and the done bit — the
// paper's "indivisible operations for testing these two conditions".
type workState struct {
	bits []bool
	idle []bool
	done bool
}

func workType() *rts.ObjectType {
	claim := func(st *workState, me int, vars []int) (int, bool) {
		if st.done {
			return -1, true
		}
		for _, v := range vars {
			if st.bits[v] {
				st.bits[v] = false
				st.idle[me] = false
				return v, false
			}
		}
		return -1, false
	}
	return &rts.ObjectType{
		Name: WorkObj,
		New: func(args []any) rts.State {
			nVars, workers := args[0].(int), args[1].(int)
			s := &workState{bits: make([]bool, nVars), idle: make([]bool, workers)}
			for i := range s.bits {
				s.bits[i] = true
			}
			return s
		},
		Clone: func(s rts.State) rts.State {
			st := s.(*workState)
			return &workState{
				bits: append([]bool(nil), st.bits...),
				idle: append([]bool(nil), st.idle...),
				done: st.done,
			}
		},
		SizeOf: func(s rts.State) int {
			st := s.(*workState)
			return 9 + len(st.bits) + len(st.idle)
		},
		Ops: map[string]*rts.OpDef{
			// mark flags variables for rechecking.
			"mark": {Name: "mark", Kind: rts.Write,
				Apply: func(s rts.State, a []any) []any {
					st := s.(*workState)
					for _, v := range a[0].([]int) {
						st.bits[v] = true
					}
					return nil
				}},
			// claim indivisibly takes one flagged variable from the
			// caller's partition (non-blocking): (var, done).
			"claim": {Name: "claim", Kind: rts.Write,
				Apply: func(s rts.State, a []any) []any {
					v, done := claim(s.(*workState), a[0].(int), a[1].([]int))
					return []any{v, done}
				}},
			// await blocks until the caller's partition has work or
			// the computation is finished, then claims indivisibly.
			"await": {Name: "await", Kind: rts.Write,
				Guard: func(s rts.State, a []any) bool {
					st := s.(*workState)
					if st.done {
						return true
					}
					for _, v := range a[1].([]int) {
						if st.bits[v] {
							return true
						}
					}
					return false
				},
				Apply: func(s rts.State, a []any) []any {
					v, done := claim(s.(*workState), a[0].(int), a[1].([]int))
					return []any{v, done}
				}},
			// setIdle declares the caller out of work; if every worker
			// is idle and no flags remain, the computation is done.
			// Returns done.
			"setIdle": {Name: "setIdle", Kind: rts.Write,
				Apply: func(s rts.State, a []any) []any {
					st := s.(*workState)
					st.idle[a[0].(int)] = true
					if !st.done {
						all := true
						for _, id := range st.idle {
							if !id {
								all = false
								break
							}
						}
						if all {
							any := false
							for _, b := range st.bits {
								if b {
									any = true
									break
								}
							}
							if !any {
								st.done = true
							}
						}
					}
					return []any{st.done}
				}},
			// finish aborts the computation (no solution exists).
			"finish": {Name: "finish", Kind: rts.Write,
				Apply: func(s rts.State, _ []any) []any {
					s.(*workState).done = true
					return nil
				}},
			"isDone": {Name: "isDone", Kind: rts.Read,
				Apply: func(s rts.State, _ []any) []any { return []any{s.(*workState).done} }},
			"anyWork": {Name: "anyWork", Kind: rts.Read,
				Apply: func(s rts.State, _ []any) []any {
					for _, b := range s.(*workState).bits {
						if b {
							return []any{true}
						}
					}
					return []any{false}
				}},
		},
	}
}
