package rts

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/rts/scheck"
	"repro/internal/sim"
)

// TestAdaptiveSequentialConsistency hammers one adaptive object from
// eight processes while its placement migrates under them — replicated
// to primary copy when node 0's writes dominate, re-homed when the
// write traffic moves to node 1, back to replicated when the workload
// turns read-only — and validates every process's observed history
// with the scheck witness. This is the acceptance test for the
// migration cut: operations sequenced before the cut complete under
// the old placement, operations after it bounce and re-issue exactly
// once under the new one, so no process may ever observe values out of
// write order, mid-migration included.
func TestAdaptiveSequentialConsistency(t *testing.T) {
	f := func(seed int64) bool {
		const nodes = 8
		b, m := newMixedTB(t, seed, nodes, DefaultP2PConfig())
		// Thresholds sized for this traffic shape: one sole writer among
		// eight processes gives a ~0.125 write fraction with dominant
		// share 1.0, so 0.08/0.04 bracket the write phases against the
		// read-only phase.
		cfg := AdaptConfig{
			SampleEvery:    24,
			MinDwell:       sim.Millisecond,
			WriteHeavyFrac: 0.08,
			ReadHeavyFrac:  0.04,
			DominantFrac:   0.5,
			Alpha:          0.5,
		}
		var id ObjID
		histories := make([][]scheck.Op, nodes)
		b.spawn(0, "boot", func(w *Worker) {
			id = m.CreateAdaptive(w, "intcell", cfg) // starts at 0
			for n := 0; n < nodes; n++ {
				n := n
				b.spawn(n, fmt.Sprintf("p%d", n), func(w *Worker) {
					rng := b.env.Rand()
					for i := 0; i < 30; i++ {
						// Three phases: node 0 writes, then node 1
						// writes, then everyone reads — driving the
						// object through to-primary, re-home, and
						// to-replicated migrations mid-hammer.
						writer := -1
						switch i / 10 {
						case 0:
							writer = 0
						case 1:
							writer = 1
						}
						if n == writer {
							v := n*1000 + i + 1 // unique nonzero value
							m.Invoke(w, id, "set", v)
							histories[n] = append(histories[n], scheck.Op{Proc: n, Write: true, Val: v})
						} else {
							got := m.Invoke(w, id, "get")[0].(int)
							histories[n] = append(histories[n], scheck.Op{Proc: n, Val: got})
						}
						w.Charge(sim.Time(rng.Intn(500)) * sim.Microsecond)
					}
				})
			}
		})
		b.run(240 * sim.Second)
		defer b.done()
		if err := scheck.Check(histories); err != nil {
			t.Fatal(err)
		}
		if st := m.Counters(); st.Migrations == 0 {
			t.Fatalf("seed %d: no migration fired — the stress test did not exercise the cut", seed)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}
