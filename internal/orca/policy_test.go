package orca_test

// Per-object placement policies: the creation-options API, the policy
// routing rules of each runtime kind, and the mixed runtime hosting
// broadcast-replicated and primary-copy objects in one program.

import (
	"fmt"
	"testing"

	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/rts"
)

// TestNewWithDefaultMatchesNew runs the same program through New and
// through NewWith with no options and requires bit-identical reports:
// the options API must be a pure superset of the old one.
func TestNewWithDefaultMatchesNew(t *testing.T) {
	run := func(create func(p *orca.Proc) orca.Object) string {
		rt := orca.New(bcastCfg(3, 30), std.Register)
		rep := rt.Run(func(p *orca.Proc) {
			o := create(p)
			p.Fork(1, "writer", func(wp *orca.Proc) {
				wp.Invoke(o, "add", 7)
			})
			p.InvokeI(o, "awaitGE", 7)
		})
		return fmt.Sprintf("%d %d %d", int64(rep.Elapsed), rep.Net.Messages, rep.Net.WireBytes)
	}
	plain := run(func(p *orca.Proc) orca.Object { return p.New(std.IntObj, 0) })
	withOpts := run(func(p *orca.Proc) orca.Object { return p.NewWith(std.IntObj, nil, 0) })
	if plain != withOpts {
		t.Fatalf("NewWith(nil opts) diverged from New:\n  New:     %s\n  NewWith: %s", plain, withOpts)
	}
}

// TestPrimaryCopyRequiresMixed checks a PrimaryCopy policy on a pure
// broadcast runtime panics with a helpful message.
func TestPrimaryCopyRequiresMixed(t *testing.T) {
	rt := orca.New(bcastCfg(2, 31), std.Register)
	rt.Run(func(p *orca.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic: PrimaryCopy on a pure broadcast runtime")
			}
		}()
		p.NewWith(std.IntObj, orca.Opts(orca.With(orca.PrimaryCopy{})))
	})
}

// TestPrimaryCopyOnP2PRuntime checks a pure point-to-point runtime can
// host a PrimaryCopy object with a per-object protocol override.
func TestPrimaryCopyOnP2PRuntime(t *testing.T) {
	rt := orca.New(orca.Config{Processors: 2, RTS: orca.P2PUpdate, Seed: 32}, std.Register)
	var got int
	rt.Run(func(p *orca.Proc) {
		o := p.NewWith(std.IntObj, orca.Opts(orca.With(orca.PrimaryCopy{
			Protocol: orca.Invalidation, Placement: orca.SingleCopy,
		})), 5)
		p.Invoke(o, "add", 3)
		got = p.InvokeI(o, "value")
	})
	if got != 8 {
		t.Fatalf("value = %d, want 8", got)
	}
}

// TestAtPinsPrimaryToCreator checks At on a PrimaryCopy object accepts
// only the creating machine.
func TestAtPinsPrimaryToCreator(t *testing.T) {
	rt := orca.New(orca.Config{Processors: 3, RTS: orca.Broadcast, Mixed: true, Seed: 33}, std.Register)
	rt.Run(func(p *orca.Proc) {
		o := p.NewWith(std.IntObj, orca.Opts(orca.With(orca.PrimaryCopy{}), orca.At(p.CPU())), 1)
		if got := p.InvokeI(o, "value"); got != 1 {
			t.Errorf("pinned primary value = %d, want 1", got)
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic: At cannot move a primary off the creating machine")
			}
		}()
		p.NewWith(std.IntObj, orca.Opts(orca.With(orca.PrimaryCopy{}), orca.At(2)))
	})
}

// TestLastPolicyWins checks a later With replaces an earlier policy
// wholesale, including its replica restriction: no stale nodes leak
// into the final placement.
func TestLastPolicyWins(t *testing.T) {
	rt := orca.New(orca.Config{Processors: 3, RTS: orca.Broadcast, Mixed: true, Seed: 38}, std.Register)
	rt.Run(func(p *orca.Proc) {
		// ReplicatedOn(0) then Replicated: full replication, so a read
		// from node 2 must be served by a local replica, not forwarded.
		full := p.NewWith(std.IntObj, orca.Opts(orca.With(orca.ReplicatedOn(0)), orca.With(orca.Replicated)), 9)
		flag := p.New(std.FlagObj)
		p.Fork(2, "reader", func(wp *orca.Proc) {
			if got := wp.InvokeI(full, "value"); got != 9 {
				t.Errorf("value = %d, want 9", got)
			}
			wp.Invoke(flag, "set", true)
		})
		p.Invoke(flag, "await")
		if fwd := rt.Stats().Forwarded; fwd != 0 {
			t.Errorf("read was forwarded (%d): earlier ReplicatedOn nodes leaked into Replicated", fwd)
		}
		// ReplicatedOn(1,2) then PrimaryCopy: the stale nodes must not
		// trip the primary pin check.
		o := p.NewWith(std.IntObj, orca.Opts(orca.With(orca.ReplicatedOn(1, 2)), orca.With(orca.PrimaryCopy{})), 4)
		if got := p.InvokeI(o, "value"); got != 4 {
			t.Errorf("primary-copy value = %d, want 4", got)
		}
	})
}

// TestMixedProgramMixesRuntimes is the tentpole scenario at the orca
// layer: one program, a broadcast-replicated counter and a primary-copy
// queue, both carrying traffic, with the unified report counting both.
func TestMixedProgramMixesRuntimes(t *testing.T) {
	rt := orca.New(orca.Config{Processors: 4, RTS: orca.Broadcast, Mixed: true, Seed: 34}, std.Register)
	const jobs = 12
	var sum int
	rep := rt.Run(func(p *orca.Proc) {
		total := std.NewCounter(p, 0) // broadcast-replicated (Default)
		q := std.NewQueue[int](p, orca.With(orca.PrimaryCopy{
			Protocol: orca.Update, Placement: orca.SingleCopy,
		}))
		fin := std.NewBarrier(p, 3)
		for cpu := 1; cpu <= 3; cpu++ {
			p.Fork(cpu, fmt.Sprintf("worker%d", cpu), func(wp *orca.Proc) {
				for {
					n, ok := q.Get(wp)
					if !ok {
						break
					}
					total.Add(wp, n)
				}
				fin.Arrive(wp)
			})
		}
		for j := 1; j <= jobs; j++ {
			q.Add(p, j)
		}
		q.Close(p)
		fin.Wait(p)
		sum = total.Value(p)
	})
	if rep.TimedOut {
		t.Fatalf("timed out; blocked: %v", rep.Blocked)
	}
	if want := jobs * (jobs + 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	if rep.RTS.BcastWrites == 0 {
		t.Error("no broadcast writes: the counter did not use the broadcast runtime")
	}
	if rep.RTS.P2PWrites == 0 {
		t.Error("no p2p writes: the queue did not use the point-to-point runtime")
	}
	if _, ok := rt.System().(*rts.MixedRTS); !ok {
		t.Errorf("system is %T, want *rts.MixedRTS", rt.System())
	}
}

// TestMixedWithP2PDefault checks the other direction: a point-to-point
// default runtime hosting one broadcast-replicated object, with remote
// forks travelling the group's total order.
func TestMixedWithP2PDefault(t *testing.T) {
	rt := orca.New(orca.Config{Processors: 3, RTS: orca.P2PUpdate, Mixed: true, Seed: 35}, std.Register)
	var readBack, cpu int
	rep := rt.Run(func(p *orca.Proc) {
		def := std.NewCounter(p, 0)                              // primary copy (Default → p2p)
		repl := std.NewCounter(p, 0, orca.With(orca.Replicated)) // broadcast-replicated
		done := std.NewFlag(p, false, orca.With(orca.Replicated))
		p.Fork(2, "remote", func(wp *orca.Proc) {
			cpu = wp.CPU()
			def.Add(wp, 3)
			repl.Add(wp, 4)
			done.Set(wp, true)
		})
		done.Await(p)
		readBack = def.Value(p) + repl.Value(p)
	})
	if rep.TimedOut {
		t.Fatalf("timed out; blocked: %v", rep.Blocked)
	}
	if cpu != 2 {
		t.Errorf("remote fork ran on cpu %d, want 2", cpu)
	}
	if readBack != 7 {
		t.Errorf("read back %d, want 7", readBack)
	}
	if rep.RTS.P2PWrites == 0 || rep.RTS.BcastWrites == 0 {
		t.Errorf("both runtimes should carry writes; got p2p=%d bcast=%d",
			rep.RTS.P2PWrites, rep.RTS.BcastWrites)
	}
}

// TestRuntimeStatsOnPureRuntimes checks Runtime.Stats fills the
// matching fields for each pure runtime kind.
func TestRuntimeStatsOnPureRuntimes(t *testing.T) {
	runB := orca.New(bcastCfg(2, 36), std.Register)
	runB.Run(func(p *orca.Proc) {
		c := std.NewCounter(p, 0)
		c.Add(p, 1)
		c.Value(p)
	})
	if st := runB.Stats(); st.BcastWrites == 0 || st.LocalReads == 0 {
		t.Errorf("broadcast stats not filled: %+v", st)
	}
	runP := orca.New(orca.Config{Processors: 2, RTS: orca.P2PInvalidate, Seed: 37}, std.Register)
	runP.Run(func(p *orca.Proc) {
		c := std.NewCounter(p, 0)
		c.Add(p, 1)
		c.Value(p)
	})
	if st := runP.Stats(); st.P2PWrites == 0 {
		t.Errorf("p2p stats not filled: %+v", st)
	}
}
