package orca_test

// The batching configuration surface: Config.Batching wiring through
// Runtime (and MixedRTS), the RTSStats amortization counters, and the
// guard rails.

import (
	"fmt"
	"testing"

	"repro/internal/orca"
	"repro/internal/orca/std"
)

// runAssignStream runs P workers streaming no-result counter assigns
// and returns the run report.
func runAssignStream(cfg orca.Config, procs, opsPer int) orca.Report {
	rt := orca.New(cfg, std.Register)
	return rt.Run(func(p *orca.Proc) {
		c := std.NewCounter(p, 0)
		fin := std.NewBarrier(p, procs)
		for cpu := 0; cpu < procs; cpu++ {
			cpu := cpu
			p.Fork(cpu, fmt.Sprintf("w%d", cpu), func(wp *orca.Proc) {
				for i := 0; i < opsPer; i++ {
					c.Assign(wp, cpu*opsPer+i)
				}
				fin.Arrive(wp)
			})
		}
		fin.Wait(p)
	})
}

// TestBatchingAmortizes: the batched run moves the same op stream in
// far fewer frames and less virtual time, and reports it through the
// new RTSStats counters.
func TestBatchingAmortizes(t *testing.T) {
	const procs, opsPer = 4, 100
	base := runAssignStream(orca.Config{Processors: procs, RTS: orca.Broadcast, Seed: 1}, procs, opsPer)
	batched := runAssignStream(orca.Config{Processors: procs, RTS: orca.Broadcast, Seed: 1,
		Batching: orca.DefaultBatching()}, procs, opsPer)

	if base.RTS.BatchedOps != 0 || base.RTS.Frames != 0 {
		t.Errorf("unbatched run reports batching counters: %+v", base.RTS)
	}
	if batched.RTS.BatchedOps < int64(procs*opsPer) {
		t.Errorf("BatchedOps = %d, want >= %d", batched.RTS.BatchedOps, procs*opsPer)
	}
	if batched.RTS.Frames == 0 || batched.RTS.Frames*4 > batched.RTS.BatchedOps {
		t.Errorf("Frames = %d for %d batched ops: weak amortization", batched.RTS.Frames, batched.RTS.BatchedOps)
	}
	if batched.Net.Frames*2 > base.Net.Frames {
		t.Errorf("batched wire frames = %d, want well under unbatched %d", batched.Net.Frames, base.Net.Frames)
	}
	if batched.Elapsed*2 > base.Elapsed {
		t.Errorf("batched virtual time = %v, want well under unbatched %v", batched.Elapsed, base.Elapsed)
	}
}

// TestBatchingUnderMixed: batching applies to the broadcast subsystem
// of a mixed runtime; primary-copy objects still work alongside it.
func TestBatchingUnderMixed(t *testing.T) {
	rt := orca.New(orca.Config{Processors: 4, RTS: orca.Broadcast, Mixed: true, Seed: 1,
		Batching: orca.DefaultBatching()}, std.Register)
	rep := rt.Run(func(p *orca.Proc) {
		bc := std.NewCounter(p, 0) // broadcast-hosted: assigns combine
		pc := std.NewCounter(p, 0, orca.With(orca.PrimaryCopy{Protocol: orca.Update, Placement: orca.SingleCopy}))
		for i := 0; i < 50; i++ {
			bc.Assign(p, i)
			pc.Assign(p, i)
		}
		if got := bc.Value(p); got != 49 {
			t.Errorf("broadcast counter = %d, want 49", got)
		}
		if got := pc.Value(p); got != 49 {
			t.Errorf("primary-copy counter = %d, want 49", got)
		}
	})
	if rep.RTS.BatchedOps == 0 {
		t.Error("no ops combined under the mixed runtime")
	}
	if rep.RTS.P2PWrites == 0 {
		t.Error("no p2p writes recorded: the primary-copy object did not run on the p2p subsystem")
	}
	if rep.TimedOut {
		t.Fatal("mixed batched run timed out")
	}
}

// TestBatchingRequiresBroadcast: a pure point-to-point configuration
// cannot ask for batching.
func TestBatchingRequiresBroadcast(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for Batching on a pure point-to-point runtime")
		}
	}()
	orca.New(orca.Config{Processors: 2, RTS: orca.P2PUpdate, Seed: 1,
		Batching: orca.DefaultBatching()}, std.Register)
}
