// ACP example: arc consistency with statically partitioned variables,
// shared domain/work/result objects, and the paper's termination
// protocol built from indivisible operations.
package main

import (
	"fmt"

	"repro/internal/apps/acp"
	"repro/internal/orca"
)

func main() {
	inst := acp.GeneratePropagation(32, 32, 20, 2)
	fmt.Printf("ACP: %d variables, domain size %d, %d constraints\n",
		inst.NVars, inst.DomainSize, len(inst.Constraints))

	seq := acp.SolveSeq(inst)
	fmt.Printf("sequential: %d revisions, no-solution=%v\n\n", seq.Revisions, seq.NoSolution)

	res := acp.RunOrca(orca.Config{
		Processors: 5, // master on processor 0, workers on 1-4
		RTS:        orca.Broadcast,
		Seed:       1,
	}, inst, acp.Params{})
	fmt.Printf("parallel (4 workers): %v virtual, %d revisions, %d messages\n",
		res.Report.Elapsed, res.Revisions, res.Report.Net.Messages)

	for v := range seq.Domains {
		if res.Domains[v] != seq.Domains[v] {
			panic("parallel fixpoint differs from sequential")
		}
	}
	sizes := acp.DomainSizes(res.Domains)
	fmt.Printf("fixpoint domain sizes (first 8 vars): %v\n", sizes[:8])
	fmt.Println("every domain update was broadcast; the per-machine handling cost")
	fmt.Println("of those updates is what bends this application's speedup curve")
}
