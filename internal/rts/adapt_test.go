package rts

import (
	"testing"

	"repro/internal/sim"
)

// Controller parameters tightened for tests: small windows and a short
// dwell so a handful of operations triggers a decision.
func testAdaptCfg() AdaptConfig {
	return AdaptConfig{SampleEvery: 16, MinDwell: sim.Millisecond}
}

// TestAdaptWriteHeavyMigratesToPrimary drives write-heavy traffic from
// one machine at a replicated adaptive object and checks the controller
// migrates it to a primary copy on that machine, with the value intact
// across the cut.
func TestAdaptWriteHeavyMigratesToPrimary(t *testing.T) {
	b, m := newMixedTB(t, 11, 3, DefaultP2PConfig())
	var id ObjID
	ready := sim.NewCond(b.env)
	b.spawn(0, "creator", func(w *Worker) {
		id = m.CreateAdaptive(w, "intcell", testAdaptCfg(), 5)
		w.Flush()
		ready.Broadcast()
	})
	b.spawn(1, "writer", func(w *Worker) {
		for id == 0 {
			ready.Wait(w.P)
		}
		w.P.Sleep(2 * sim.Millisecond) // put the first decision past the dwell
		for i := 0; i < 40; i++ {
			m.Invoke(w, id, "inc")
		}
		w.Flush()
		if got := m.Invoke(w, id, "get")[0].(int); got != 45 {
			t.Errorf("value after migration = %d, want 45", got)
		}
	})
	b.run(10 * sim.Second)
	b.done()
	if pl := m.AdaptivePlacements()[id]; pl != "primary@1" {
		t.Errorf("placement = %q, want primary@1", pl)
	}
	if st := m.Counters(); st.Migrations != 1 {
		t.Errorf("migrations = %d, want 1", st.Migrations)
	}
}

// TestAdaptReadHeavyMigratesBack first concentrates writes to force a
// primary copy, then floods reads from another machine until the EWMA
// write fraction falls below the read-heavy threshold and the object
// returns to full replication.
func TestAdaptReadHeavyMigratesBack(t *testing.T) {
	b, m := newMixedTB(t, 12, 3, DefaultP2PConfig())
	var id ObjID
	step := 0
	cond := sim.NewCond(b.env)
	await := func(p *sim.Proc, want int) {
		for step < want {
			cond.Wait(p)
		}
	}
	b.spawn(0, "creator", func(w *Worker) {
		id = m.CreateAdaptive(w, "intcell", testAdaptCfg(), 0)
		w.Flush()
		step = 1
		cond.Broadcast()
	})
	b.spawn(1, "writer", func(w *Worker) {
		await(w.P, 1)
		w.P.Sleep(2 * sim.Millisecond)
		for i := 0; i < 32; i++ {
			m.Invoke(w, id, "inc")
		}
		w.Flush()
		if pl := m.AdaptivePlacements()[id]; pl != "primary@1" {
			t.Errorf("placement after write phase = %q, want primary@1", pl)
		}
		step = 2
		cond.Broadcast()
	})
	b.spawn(2, "reader", func(w *Worker) {
		await(w.P, 2)
		// Three pure-read windows decay the EWMA 1.0 -> 0.5 -> 0.25 ->
		// 0.125, under the 0.15 read-heavy default at the third decision.
		for i := 0; i < 64; i++ {
			if got := m.Invoke(w, id, "get")[0].(int); got != 32 {
				t.Errorf("read %d = %d, want 32", i, got)
			}
		}
		w.Flush()
	})
	b.run(20 * sim.Second)
	b.done()
	if pl := m.AdaptivePlacements()[id]; pl != "replicated" {
		t.Errorf("final placement = %q, want replicated", pl)
	}
	if st := m.Counters(); st.Migrations != 2 {
		t.Errorf("migrations = %d, want 2", st.Migrations)
	}
}

// TestAdaptRehomeFollowsWriter migrates an object to a primary copy,
// then shifts the write traffic to a different machine and checks the
// primary re-homes toward the new dominant writer.
func TestAdaptRehomeFollowsWriter(t *testing.T) {
	b, m := newMixedTB(t, 13, 3, DefaultP2PConfig())
	var id ObjID
	step := 0
	cond := sim.NewCond(b.env)
	await := func(p *sim.Proc, want int) {
		for step < want {
			cond.Wait(p)
		}
	}
	b.spawn(0, "creator", func(w *Worker) {
		id = m.CreateAdaptive(w, "intcell", testAdaptCfg(), 0)
		w.Flush()
		step = 1
		cond.Broadcast()
	})
	b.spawn(1, "writer-a", func(w *Worker) {
		await(w.P, 1)
		w.P.Sleep(2 * sim.Millisecond)
		for i := 0; i < 32; i++ {
			m.Invoke(w, id, "inc")
		}
		w.Flush()
		step = 2
		cond.Broadcast()
	})
	b.spawn(2, "writer-b", func(w *Worker) {
		await(w.P, 2)
		w.P.Sleep(2 * sim.Millisecond) // dwell between the two migrations
		for i := 0; i < 32; i++ {
			m.Invoke(w, id, "inc")
		}
		w.Flush()
		if got := m.Invoke(w, id, "get")[0].(int); got != 64 {
			t.Errorf("value after re-home = %d, want 64", got)
		}
	})
	b.run(20 * sim.Second)
	b.done()
	if pl := m.AdaptivePlacements()[id]; pl != "primary@2" {
		t.Errorf("final placement = %q, want primary@2", pl)
	}
	if st := m.Counters(); st.Migrations != 2 {
		t.Errorf("migrations = %d, want 2", st.Migrations)
	}
}

// TestAdaptGuardWaiterSurvivesMigration parks a consumer on a guarded
// queue get while a producer's put traffic migrates the queue from
// replicated to primary copy. The bounced waiter must re-register on
// the new placement and the FIFO order must survive the cut.
func TestAdaptGuardWaiterSurvivesMigration(t *testing.T) {
	b, m := newMixedTB(t, 14, 3, DefaultP2PConfig())
	var id ObjID
	ready := sim.NewCond(b.env)
	var got []int
	b.spawn(0, "creator", func(w *Worker) {
		id = m.CreateAdaptive(w, "queue", testAdaptCfg())
		w.Flush()
		ready.Broadcast()
	})
	b.spawn(1, "producer", func(w *Worker) {
		for id == 0 {
			ready.Wait(w.P)
		}
		w.P.Sleep(2 * sim.Millisecond)
		for i := 0; i < 48; i++ {
			m.Invoke(w, id, "put", i)
			if i%8 == 7 {
				w.P.Sleep(sim.Millisecond) // let the consumer drain and block again
			}
		}
		w.Flush()
	})
	b.spawn(2, "consumer", func(w *Worker) {
		for id == 0 {
			ready.Wait(w.P)
		}
		for i := 0; i < 12; i++ {
			got = append(got, m.Invoke(w, id, "get")[0].(int))
		}
		w.Flush()
	})
	b.run(20 * sim.Second)
	b.done()
	if len(got) != 12 {
		t.Fatalf("consumer drained %d items, want 12", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("FIFO order broken across migration: %v", got)
		}
	}
	if pl := m.AdaptivePlacements()[id]; pl != "primary@1" {
		t.Errorf("final placement = %q, want primary@1", pl)
	}
}

// TestAdaptDeterminism runs the full lifecycle scenario (replicated ->
// primary -> re-home -> replicated) twice from the same seed and checks
// virtual time, migration counters, and the final placement agree
// exactly.
func TestAdaptDeterminism(t *testing.T) {
	run := func() (sim.Time, RTSStats, string) {
		b, m := newMixedTB(t, 21, 4, DefaultP2PConfig())
		var id ObjID
		step := 0
		cond := sim.NewCond(b.env)
		await := func(p *sim.Proc, want int) {
			for step < want {
				cond.Wait(p)
			}
		}
		b.spawn(0, "creator", func(w *Worker) {
			id = m.CreateAdaptive(w, "intcell", testAdaptCfg(), 0)
			w.Flush()
			step = 1
			cond.Broadcast()
		})
		b.spawn(1, "writer-a", func(w *Worker) {
			await(w.P, 1)
			w.P.Sleep(2 * sim.Millisecond)
			for i := 0; i < 32; i++ {
				m.Invoke(w, id, "inc")
			}
			w.Flush()
			step = 2
			cond.Broadcast()
		})
		b.spawn(2, "writer-b", func(w *Worker) {
			await(w.P, 2)
			w.P.Sleep(2 * sim.Millisecond)
			for i := 0; i < 32; i++ {
				m.Invoke(w, id, "inc")
			}
			w.Flush()
			step = 3
			cond.Broadcast()
		})
		b.spawn(3, "reader", func(w *Worker) {
			await(w.P, 3)
			w.P.Sleep(2 * sim.Millisecond)
			for i := 0; i < 64; i++ {
				m.Invoke(w, id, "get")
			}
			w.Flush()
		})
		b.run(30 * sim.Second)
		b.done()
		return b.env.Now(), m.Counters(), m.AdaptivePlacements()[id]
	}
	t1, s1, p1 := run()
	t2, s2, p2 := run()
	if t1 != t2 {
		t.Errorf("virtual time diverged: %v vs %v", t1, t2)
	}
	if s1 != s2 {
		t.Errorf("counters diverged:\n  %+v\n  %+v", s1, s2)
	}
	if p1 != p2 {
		t.Errorf("placement diverged: %q vs %q", p1, p2)
	}
	if s1.Migrations < 3 {
		t.Errorf("lifecycle ran %d migrations, want at least 3", s1.Migrations)
	}
}

// TestAdaptAbortWhenTargetDiesBeforeCut exercises the target-dead abort
// path of a broadcast->primary migration: the migrate record is
// sequenced while the target machine is alive, the target dies before
// the record's globally-first delivery, and every member must agree the
// migration aborted — the object stays replicated, its state intact,
// and no waiter strands.
//
// The timing is made controllable by splitting roles: node 1 issues
// exactly SampleEvery-1 writes (the dominant writer, hence the target),
// and node 2's read fills the window and initiates the migration at a
// known instant; the fault timer kills node 1 inside the record's
// broadcast flight.
func TestAdaptAbortWhenTargetDiesBeforeCut(t *testing.T) {
	b, m := newMixedTB(t, 31, 3, DefaultP2PConfig())
	cfg := AdaptConfig{SampleEvery: 8, MinDwell: sim.Millisecond}
	var id ObjID
	ready := sim.NewCond(b.env)
	b.spawn(0, "creator", func(w *Worker) {
		id = m.CreateAdaptive(w, "intcell", cfg, 0)
		w.Flush()
		ready.Broadcast()
	})
	b.spawn(1, "writer", func(w *Worker) {
		for id == 0 {
			ready.Wait(w.P)
		}
		w.P.Sleep(sim.Millisecond)
		for i := 0; i < 7; i++ { // one short of the window
			m.Invoke(w, id, "inc")
			w.P.Sleep(500 * sim.Microsecond)
		}
	})
	var after, bumped int
	b.spawn(2, "trigger", func(w *Worker) {
		for id == 0 {
			ready.Wait(w.P)
		}
		w.P.Sleep(12 * sim.Millisecond)
		// The 8th access: fills the window, decides to-primary@1, and
		// drives the migration — node 1 dies while the record is in
		// flight, so this returns only after the abort.
		m.Invoke(w, id, "get")
		after = m.Invoke(w, id, "get")[0].(int)
		m.Invoke(w, id, "inc")
		bumped = m.Invoke(w, id, "get")[0].(int)
	})
	b.env.At(12100*sim.Microsecond, func() { b.crash(1, m) })
	b.run(30 * sim.Second)
	if after != 7 {
		t.Errorf("value after aborted migration = %d, want 7", after)
	}
	if bumped != 8 {
		t.Errorf("replicated object rejected a post-abort write: got %d, want 8", bumped)
	}
	if st := m.Counters(); st.Migrations != 0 {
		t.Errorf("migrations = %d, want 0 (the abort must not count)", st.Migrations)
	}
	if pl := m.AdaptivePlacements()[id]; pl != "replicated" {
		t.Errorf("placement = %q, want replicated after the abort", pl)
	}
	if got := b.blockedApp("1", "trigger", "writer", "creator"); len(got) != 0 {
		t.Errorf("blocked after run: %v", got)
	}
	b.done()
}

// TestAdaptMoveoutRescuedAfterDriverCrash exercises the crash rescue of
// a primary->broadcast moveout: the old primary publishes its snapshot
// and dies before the sequenced install record settles; a bounced
// waiter on a surviving machine must re-broadcast the snapshot
// (awaitFlip), and the object must come back fully replicated with
// every pre-crash write intact.
func TestAdaptMoveoutRescuedAfterDriverCrash(t *testing.T) {
	b, m := newMixedTB(t, 37, 3, DefaultP2PConfig())
	cfg := AdaptConfig{SampleEvery: 4, MinDwell: sim.Millisecond}
	var id ObjID
	ready := sim.NewCond(b.env)
	b.spawn(0, "creator", func(w *Worker) {
		id = m.CreateAdaptive(w, "intcell", cfg, 0)
		w.Flush()
		ready.Broadcast()
	})
	b.spawn(1, "writer", func(w *Worker) {
		for id == 0 {
			ready.Wait(w.P)
		}
		w.P.Sleep(sim.Millisecond)
		// Window fills at 4 writes: to-primary@1; the rest apply at the
		// local primary, so value 8 lives only on node 1 (plus the
		// frozen replicas of the cut and, later, the moveout snapshot).
		for i := 0; i < 8; i++ {
			m.Invoke(w, id, "inc")
			w.P.Sleep(400 * sim.Microsecond)
		}
	})
	finals := make([]int, 3)
	for _, node := range []int{0, 2} {
		node := node
		b.spawn(node, "reader", func(w *Worker) {
			for id == 0 {
				ready.Wait(w.P)
			}
			w.P.Sleep(10 * sim.Millisecond)
			// Read-only windows decay the EWMA below the to-replicated
			// bar; one of these reads initiates the moveout that node
			// 1's object thread drives when the crash hits.
			for i := 0; i < 12; i++ {
				m.Invoke(w, id, "get")
				w.P.Sleep(600 * sim.Microsecond)
			}
			finals[node] = m.Invoke(w, id, "get")[0].(int)
		})
	}
	b.env.At(22200*sim.Microsecond, func() { b.crash(1, m) })
	b.run(30 * sim.Second)
	if finals[0] != 8 || finals[2] != 8 {
		t.Errorf("survivor reads = %d/%d, want 8/8 (no write may be lost across the rescued moveout)",
			finals[0], finals[2])
	}
	if pl := m.AdaptivePlacements()[id]; pl != "replicated" {
		t.Errorf("placement = %q, want replicated after the rescued moveout", pl)
	}
	if st := m.Counters(); st.Migrations != 2 {
		t.Errorf("migrations = %d, want 2 (to-primary, then the rescued moveout)", st.Migrations)
	}
	if got := b.blockedApp("1", "reader", "writer", "creator"); len(got) != 0 {
		t.Errorf("blocked after run: %v", got)
	}
	b.done()
}
