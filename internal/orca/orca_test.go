package orca_test

import (
	"fmt"
	"testing"

	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/sim"
)

func bcastCfg(n int, seed int64) orca.Config {
	return orca.Config{Processors: n, RTS: orca.Broadcast, Seed: seed}
}

func TestRunSimpleProgram(t *testing.T) {
	rt := orca.New(bcastCfg(2, 1), std.Register)
	var final int
	rep := rt.Run(func(p *orca.Proc) {
		o := p.New(std.IntObj, 10)
		p.Invoke(o, "add", 5)
		final = p.InvokeI(o, "value")
	})
	if final != 15 {
		t.Fatalf("final = %d, want 15", final)
	}
	if rep.TimedOut {
		t.Fatal("timed out")
	}
	if rep.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestForkPlacementAndSharing(t *testing.T) {
	const workers = 4
	rt := orca.New(bcastCfg(workers, 2), std.Register)
	cpus := make([]int, workers)
	rt.Run(func(p *orca.Proc) {
		counter := p.New(std.IntObj)
		done := p.New(std.BarrierObj, workers)
		for i := 0; i < workers; i++ {
			i := i
			p.Fork(i, fmt.Sprintf("worker%d", i), func(wp *orca.Proc) {
				cpus[i] = wp.CPU()
				wp.Invoke(counter, "inc")
				wp.Invoke(done, "arrive")
			})
		}
		p.Invoke(done, "wait")
		if got := p.InvokeI(counter, "value"); got != workers {
			t.Errorf("counter = %d, want %d", got, workers)
		}
	})
	for i, c := range cpus {
		if c != i {
			t.Fatalf("worker %d ran on cpu %d", i, c)
		}
	}
}

func TestWorkCharging(t *testing.T) {
	rt := orca.New(bcastCfg(1, 3), std.Register)
	rep := rt.Run(func(p *orca.Proc) {
		p.Work(250 * sim.Millisecond)
	})
	if rep.Elapsed < 250*sim.Millisecond {
		t.Fatalf("elapsed = %v, want >= 250ms", rep.Elapsed)
	}
	if rep.AppBusy[0] < 250*sim.Millisecond {
		t.Fatalf("app busy = %v, want >= 250ms", rep.AppBusy[0])
	}
}

func TestParallelWorkSpeedsUp(t *testing.T) {
	// The core promise: the same total work on more processors takes
	// less virtual time.
	elapsed := func(procs int) sim.Time {
		rt := orca.New(bcastCfg(procs, 4), std.Register)
		rep := rt.Run(func(p *orca.Proc) {
			done := p.New(std.BarrierObj, procs)
			for i := 0; i < procs; i++ {
				p.Fork(i, fmt.Sprintf("w%d", i), func(wp *orca.Proc) {
					wp.Work(sim.Second / sim.Time(procs) * 16) // fixed total
					wp.Invoke(done, "arrive")
				})
			}
			p.Invoke(done, "wait")
		})
		return rep.Elapsed
	}
	t1 := elapsed(1)
	t4 := elapsed(4)
	ratio := float64(t1) / float64(t4)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("speedup 1->4 procs = %.2f, want ~4", ratio)
	}
}

func TestJobQueueReplicatedWorkers(t *testing.T) {
	const jobs, workers = 30, 3
	for _, kind := range []orca.RTSKind{orca.Broadcast, orca.P2PUpdate, orca.P2PInvalidate} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rt := orca.New(orca.Config{Processors: workers + 1, RTS: kind, Seed: 5}, std.Register)
			var sum int
			rt.Run(func(p *orca.Proc) {
				q := p.New(std.JobQueueObj)
				acc := p.New(std.AccumObj)
				fin := p.New(std.BarrierObj, workers)
				for i := 1; i <= workers; i++ {
					p.Fork(i, fmt.Sprintf("worker%d", i), func(wp *orca.Proc) {
						local := 0
						for {
							res := wp.Invoke(q, "get")
							if !res[1].(bool) {
								break
							}
							local += res[0].(int)
							wp.Work(time1ms)
						}
						wp.Invoke(acc, "add", local)
						wp.Invoke(fin, "arrive")
					})
				}
				for j := 1; j <= jobs; j++ {
					p.Invoke(q, "add", j)
				}
				p.Invoke(q, "close")
				p.Invoke(fin, "wait")
				sum = wp0Value(p, acc)
			})
			want := jobs * (jobs + 1) / 2
			if sum != want {
				t.Fatalf("sum = %d, want %d", sum, want)
			}
		})
	}
}

const time1ms = sim.Millisecond

func wp0Value(p *orca.Proc, acc orca.Object) int { return p.InvokeI(acc, "value") }

func TestFlagAwaitAcrossRTS(t *testing.T) {
	for _, kind := range []orca.RTSKind{orca.Broadcast, orca.P2PUpdate} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rt := orca.New(orca.Config{Processors: 2, RTS: kind, Seed: 6}, std.Register)
			var awoke sim.Time
			var setAt sim.Time
			rt.Run(func(p *orca.Proc) {
				f := p.New(std.FlagObj)
				p.Fork(1, "waiter", func(wp *orca.Proc) {
					wp.Invoke(f, "await")
					awoke = wp.Now()
				})
				p.Sleep(300 * sim.Millisecond)
				setAt = p.Now()
				p.Invoke(f, "set", true)
			})
			if awoke < setAt {
				t.Fatalf("await woke at %v before set at %v", awoke, setAt)
			}
		})
	}
}

func TestBoolArrayClaimExactlyOnce(t *testing.T) {
	const items, workers = 24, 4
	rt := orca.New(bcastCfg(workers, 7), std.Register)
	claims := make([]int, items)
	rt.Run(func(p *orca.Proc) {
		work := p.New(std.BoolArrayObj, items, true)
		fin := p.New(std.BarrierObj, workers)
		for wdx := 0; wdx < workers; wdx++ {
			p.Fork(wdx, fmt.Sprintf("w%d", wdx), func(wp *orca.Proc) {
				for i := 0; i < items; i++ {
					if wp.InvokeB(work, "claim", i) {
						claims[i]++
					}
				}
				wp.Invoke(fin, "arrive")
			})
		}
		p.Invoke(fin, "wait")
	})
	for i, c := range claims {
		if c != 1 {
			t.Fatalf("item %d claimed %d times", i, c)
		}
	}
}

func TestTableStoreLookup(t *testing.T) {
	rt := orca.New(bcastCfg(2, 8), std.Register)
	rt.Run(func(p *orca.Proc) {
		tab := p.New(std.TableObj, 128)
		p.Invoke(tab, "store", uint64(12345), int64(-77))
		p.Fork(1, "reader", func(wp *orca.Proc) {
			res := wp.Invoke(tab, "lookup", uint64(12345))
			if !res[1].(bool) || res[0].(int64) != -77 {
				t.Errorf("lookup = %v", res)
			}
			miss := wp.Invoke(tab, "lookup", uint64(999))
			if miss[1].(bool) {
				t.Error("expected miss")
			}
		})
	})
}

func TestKillerTable(t *testing.T) {
	rt := orca.New(bcastCfg(1, 9), std.Register)
	rt.Run(func(p *orca.Proc) {
		k := p.New(std.KillerObj, 8)
		p.Invoke(k, "add", 3, 111)
		p.Invoke(k, "add", 3, 222)
		res := p.Invoke(k, "get", 3)
		if res[0].(int) != 222 || res[1].(int) != 111 {
			t.Errorf("killer moves = %v, want [222 111]", res)
		}
	})
}

func TestBitSetAddMany(t *testing.T) {
	rt := orca.New(bcastCfg(2, 10), std.Register)
	rt.Run(func(p *orca.Proc) {
		s := p.New(std.BitSetObj, 1000)
		added := p.InvokeI(s, "addMany", []int{1, 5, 900, 5})
		if added != 3 {
			t.Errorf("added = %d, want 3 (one duplicate)", added)
		}
		if !p.InvokeB(s, "contains", 900) {
			t.Error("missing 900")
		}
		if p.InvokeB(s, "contains", 2) {
			t.Error("unexpected 2")
		}
		if n := p.InvokeI(s, "count"); n != 3 {
			t.Errorf("count = %d", n)
		}
	})
}

func TestTimeoutDetection(t *testing.T) {
	cfg := bcastCfg(2, 11)
	cfg.MaxTime = 100 * sim.Millisecond
	rt := orca.New(cfg, std.Register)
	rep := rt.Run(func(p *orca.Proc) {
		f := p.New(std.FlagObj)
		p.Invoke(f, "await") // never set: deadlock by design
	})
	if !rep.TimedOut {
		t.Fatal("expected timeout report")
	}
}

func TestReportStatistics(t *testing.T) {
	rt := orca.New(bcastCfg(3, 12), std.Register)
	rep := rt.Run(func(p *orca.Proc) {
		o := p.New(std.IntObj)
		for i := 0; i < 10; i++ {
			p.Invoke(o, "assign", i)
		}
	})
	if rep.Net.Messages == 0 {
		t.Fatal("writes should generate traffic")
	}
	if len(rep.CPUBusy) != 3 || len(rep.AppBusy) != 3 {
		t.Fatalf("per-node stats missing: %v %v", rep.CPUBusy, rep.AppBusy)
	}
	// Replica update overhead must appear on non-writing machines.
	if rep.CPUBusy[1] == 0 {
		t.Fatal("replica machine shows no CPU activity")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (sim.Time, int64) {
		rt := orca.New(bcastCfg(4, 77), std.Register)
		rep := rt.Run(func(p *orca.Proc) {
			q := p.New(std.JobQueueObj)
			fin := p.New(std.BarrierObj, 3)
			for i := 1; i <= 3; i++ {
				p.Fork(i, fmt.Sprintf("w%d", i), func(wp *orca.Proc) {
					for {
						res := wp.Invoke(q, "get")
						if !res[1].(bool) {
							break
						}
						wp.Work(sim.Time(res[0].(int)) * 100 * sim.Microsecond)
					}
					wp.Invoke(fin, "arrive")
				})
			}
			for j := 1; j <= 40; j++ {
				p.Invoke(q, "add", j)
			}
			p.Invoke(q, "close")
			p.Invoke(fin, "wait")
		})
		return rep.Elapsed, rep.Net.Messages
	}
	e1, m1 := run()
	e2, m2 := run()
	if e1 != e2 || m1 != m2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", e1, m1, e2, m2)
	}
}

func TestReplicatedPolicyRequiresBroadcast(t *testing.T) {
	rt := orca.New(orca.Config{Processors: 2, RTS: orca.P2PUpdate, Seed: 20}, std.Register)
	rt.Run(func(p *orca.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic: Replicated placement on the point-to-point runtime")
			}
		}()
		p.NewWith(std.IntObj, orca.Opts(orca.With(orca.ReplicatedOn(0))))
	})
}

func TestPartialPlacement(t *testing.T) {
	rt := orca.New(bcastCfg(4, 21), std.Register)
	var forwarded bool
	rt.Run(func(p *orca.Proc) {
		o := p.NewWith(std.IntObj, orca.Opts(orca.At(0, 1)), 3)
		p.Fork(3, "outsider", func(wp *orca.Proc) {
			// Node 3 holds no replica: the operation forwards and
			// still returns the right answer.
			if got := wp.InvokeI(o, "value"); got != 3 {
				t.Errorf("forwarded read = %d", got)
			}
			forwarded = true
		})
	})
	if !forwarded {
		t.Fatal("outsider never ran")
	}
}

func TestRemoteForkOnP2PRuntime(t *testing.T) {
	rt := orca.New(orca.Config{Processors: 3, RTS: orca.P2PInvalidate, Seed: 22}, std.Register)
	var ranOn int
	rt.Run(func(p *orca.Proc) {
		f := p.New(std.FlagObj)
		p.Fork(2, "remote", func(wp *orca.Proc) {
			ranOn = wp.CPU()
			wp.Invoke(f, "set", true)
		})
		p.Invoke(f, "await")
	})
	if ranOn != 2 {
		t.Fatalf("remote fork ran on cpu %d, want 2", ranOn)
	}
}

func TestGroupStatsExposed(t *testing.T) {
	rt := orca.New(bcastCfg(3, 23), std.Register)
	rt.Run(func(p *orca.Proc) {
		o := p.New(std.IntObj)
		for i := 0; i < 5; i++ {
			p.Invoke(o, "assign", i)
		}
	})
	gs := rt.GroupStats()
	if len(gs) != 3 {
		t.Fatalf("group stats for %d members", len(gs))
	}
	if gs[0].Delivered == 0 {
		t.Fatal("no deliveries recorded")
	}
}
