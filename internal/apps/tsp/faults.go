package tsp

import (
	"fmt"

	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/rts"
	"repro/internal/sim"
)

// Fault-tolerant TSP. The paper's replicated-worker TSP loses work
// when a worker machine crashes: jobs the dead worker had dequeued are
// gone, so the search may silently miss the optimum, and the final
// barrier waits forever. The crash-aware variant replaces the plain
// job queue + barrier with a job tracker — a shared object that
// remembers which worker holds which chunk — so the manager can
// requeue a dead worker's claimed chunks and the computation still
// visits every subtree. The bound object needs nothing: it is fully
// replicated, and a dead worker's last bound improvement was either
// broadcast (every survivor prunes with it) or lost with a subtree
// that will be re-searched anyway.

// TrackerObj is the registered type name of the job tracker.
const TrackerObj = "tsp.tracker"

// trackerState is the job tracker: pending chunks, per-worker claims,
// per-worker liveness, and completion counting. One shared object
// holds all of it because Orca guards range over a single object: the
// blocking take must see the queue, the close bit, and the completion
// count in one indivisible evaluation.
type trackerState struct {
	jobs    []Chunk // pending chunks, FIFO
	claims  []Chunk // claims[w]: chunk worker w is searching
	claimed []bool  // claims[w] valid
	dead    []bool  // w was retired after its machine crashed
	closed  bool    // all chunks generated
	total   int     // chunks added
	done    int     // chunks completed
}

// WireSize implements rts.Sized.
func (s *trackerState) WireSize() int {
	n := 21 + len(s.claimed) + len(s.dead)
	for i := range s.jobs {
		n += s.jobs[i].WireSize()
	}
	for w := range s.claims {
		if s.claimed[w] {
			n += s.claims[w].WireSize()
		}
	}
	return n
}

var (
	trackerB = orca.NewType(TrackerObj, func(args []any) *trackerState {
		workers := args[0].(int)
		return &trackerState{
			claims:  make([]Chunk, workers),
			claimed: make([]bool, workers),
			dead:    make([]bool, workers),
		}
	}).
		CloneWith(func(s *trackerState) *trackerState {
			return &trackerState{
				jobs:    append([]Chunk(nil), s.jobs...),
				claims:  append([]Chunk(nil), s.claims...),
				claimed: append([]bool(nil), s.claimed...),
				dead:    append([]bool(nil), s.dead...),
				closed:  s.closed,
				total:   s.total,
				done:    s.done,
			}
		}).
		SizedBy((*trackerState).WireSize)

	trackerAdd = orca.DefUpdate(trackerB, "add", func(s *trackerState, c Chunk) {
		s.jobs = append(s.jobs, c)
		s.total++
	})
	trackerClose = orca.DefUpdate0(trackerB, "close", func(s *trackerState) { s.closed = true })
	// take blocks until a chunk is available or the computation has
	// finished (all chunks generated and completed), then indivisibly
	// dequeues and records the claim. A retired worker's take — one
	// that was already in flight when its machine crashed — returns
	// empty instead of claiming, so requeued chunks cannot be handed
	// back to the dead.
	trackerTake = orca.DefWrite1x2(trackerB, "take", func(s *trackerState, w int) (Chunk, bool) {
		if s.dead[w] || len(s.jobs) == 0 {
			return Chunk{}, false
		}
		c := s.jobs[0]
		s.jobs = s.jobs[1:]
		s.claims[w] = c
		s.claimed[w] = true
		return c, true
	}).Guard(func(s *trackerState, w int) bool {
		return len(s.jobs) > 0 || s.dead[w] || (s.closed && s.done == s.total)
	})
	// complete reports the caller's claimed chunk finished.
	trackerComplete = orca.DefUpdate(trackerB, "complete", func(s *trackerState, w int) {
		s.claims[w] = Chunk{}
		s.claimed[w] = false
		s.done++
	})
	// requeue retires dead workers and returns their claimed chunks to
	// the queue for the survivors.
	trackerRequeue = orca.DefUpdate(trackerB, "requeue", func(s *trackerState, ws []int) {
		for _, w := range ws {
			s.dead[w] = true
			if s.claimed[w] {
				s.jobs = append(s.jobs, s.claims[w])
				s.claims[w] = Chunk{}
				s.claimed[w] = false
			}
		}
	})
	trackerFinished = orca.DefRead0(trackerB, "finished", func(s *trackerState) bool {
		return s.closed && s.done == s.total
	})
)

// tracker is the crash-aware job queue handle.
type tracker struct{ h orca.Handle[*trackerState] }

func newTracker(p *orca.Proc, workers int) tracker {
	return tracker{h: trackerB.New(p, workers)}
}

// Add appends a chunk of jobs.
func (t tracker) Add(p *orca.Proc, c Chunk) { trackerAdd.Call(p, t.h, c) }

// Close marks job generation finished.
func (t tracker) Close(p *orca.Proc) { trackerClose.Call(p, t.h) }

// Complete reports worker w's claimed chunk finished.
func (t tracker) Complete(p *orca.Proc, w int) { trackerComplete.Call(p, t.h, w) }

// Requeue retires dead workers, returning their claims to the queue.
func (t tracker) Requeue(p *orca.Proc, ws []int) { trackerRequeue.Call(p, t.h, ws) }

// Finished reports whether every generated chunk has completed.
func (t tracker) Finished(p *orca.Proc) bool { return trackerFinished.Call(p, t.h) }

// Take blocks for the next chunk; ok is false once the search is done
// (or the calling worker has been retired).
func (t tracker) Take(p *orca.Proc, w int) (Chunk, bool) {
	return trackerTake.Call(p, t.h, w)
}

// registerFT adds the tracker type on top of the std registrations.
func registerFT(reg *rts.Registry) {
	std.Register(reg)
	trackerB.Register(reg)
}

// supervisePollInterval is how often the crash-aware manager checks
// for worker deaths and completion. Liveness is not a shared object —
// it changes underneath the consistency protocols — so the manager
// polls the runtime's crash reports in virtual time.
const supervisePollInterval = 25 * sim.Millisecond

// runOrcaFT executes the crash-aware TSP program: same search, but
// jobs travel through the tracker and the manager supervises worker
// liveness, requeueing a dead worker's claimed chunks. With a fault
// plan that crashes worker machines (not processor 0, which hosts the
// manager), the run still reports the true optimum.
func runOrcaFT(cfg orca.Config, inst *Instance, params Params) Result {
	workers := params.Workers
	if workers == 0 {
		workers = cfg.Processors
	}
	rt := orca.New(cfg, registerFT)
	res := Result{}
	rep := rt.Run(func(p *orca.Proc) {
		nn := InitialBound(inst)
		p.Work(sim.Time(inst.N*inst.N) * 2 * sim.Microsecond)
		bound := std.NewCounter(p, nn+1)
		track := newTracker(p, workers)
		nodesAcc := std.NewAccum(p)
		exited := std.NewBoolArray(p, workers, false)

		for wdx := 0; wdx < workers; wdx++ {
			wdx := wdx
			cpu := wdx % cfg.Processors
			p.Fork(cpu, fmt.Sprintf("tsp-worker%d", wdx), func(wp *orca.Proc) {
				var total int64
				for {
					chunk, ok := track.Take(wp, wdx)
					if !ok {
						break
					}
					for _, job := range chunk.Jobs {
						n := SearchJob(inst, job,
							func() int {
								wp.Work(BoundReadCost)
								return bound.Value(wp)
							},
							func(totalLen int) {
								if totalLen < bound.Value(wp) {
									bound.Min(wp, totalLen)
								}
							},
							func(n int64) {
								wp.Work(sim.Time(n) * NodeCost)
							})
						total += n
					}
					track.Complete(wp, wdx)
				}
				nodesAcc.Add(wp, int(total))
				exited.Set(wp, wdx, true)
			})
		}

		jobs := GenerateJobs(inst, params.JobDepth)
		p.Work(sim.Time(len(jobs)) * 50 * sim.Microsecond)
		singles := 4 * workers
		if singles > len(jobs) {
			singles = len(jobs)
		}
		for i := 0; i < singles; i++ {
			track.Add(p, Chunk{Jobs: jobs[i : i+1]})
		}
		for lo := singles; lo < len(jobs); lo += params.ChunkSize {
			hi := lo + params.ChunkSize
			if hi > len(jobs) {
				hi = len(jobs)
			}
			track.Add(p, Chunk{Jobs: jobs[lo:hi]})
		}
		track.Close(p)

		// Supervision loop: retire workers whose machines crashed
		// (requeueing their claimed chunks), and finish once every
		// chunk is completed and every worker has either exited or
		// died. Exit is tracked per worker — an aggregate count would
		// let a dead-but-exited worker stand in for a survivor still
		// draining its last chunk.
		retired := make(map[int]bool)
		for {
			for _, node := range p.DeadNodes() {
				if retired[node] {
					continue
				}
				retired[node] = true
				var ws []int
				for w := 0; w < workers; w++ {
					if w%cfg.Processors == node {
						ws = append(ws, w)
					}
				}
				if len(ws) > 0 {
					track.Requeue(p, ws)
				}
			}
			if track.Finished(p) {
				settled := true
				for w := 0; w < workers; w++ {
					if !exited.Get(p, w) && !p.NodeDown(w%cfg.Processors) {
						settled = false
						break
					}
				}
				if settled {
					break
				}
			}
			p.Sleep(supervisePollInterval)
		}
		res.Best = bound.Value(p)
		res.Nodes = int64(nodesAcc.Value(p))
	})
	res.Report = rep
	res.Runtime = rt
	return res
}
