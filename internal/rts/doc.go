// Package rts implements the paper's shared data-object runtime
// systems: the broadcast RTS (§3.2.1: full replication, local reads,
// writes propagated by totally-ordered broadcast), the point-to-point
// RTS (§3.2.2: primary copy plus secondaries kept consistent by an
// invalidation or two-phase update protocol, with dynamic replication
// decided from read/write statistics), and a mixed composite hosting
// both so placement is a per-object decision.
//
// An object is an instance of an ObjectType: encapsulated state plus
// a set of operations, each classified as a read (no state change) or
// a write. Operations may carry a guard; a guarded operation blocks
// until its guard is true and then executes indivisibly — Orca's
// condition synchronization. All operations on all shared objects are
// sequentially consistent.
//
// Machine crashes are survived, not masked: the broadcast runtime
// rides on the group layer's re-election and routes forwarded work
// around dead replica holders, while the point-to-point runtime
// re-homes an object whose primary died onto a surviving copy (or
// restarts it from its creation arguments if none survived) — see
// p2p_recover.go for the at-least-once caveat on writes in flight.
//
// Downward: replicas live on amoeba machines; broadcast writes ride
// package group and primary-copy traffic rides amoeba RPC. Upward:
// package orca wraps these systems in the Orca programming model.
package rts
