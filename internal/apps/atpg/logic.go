package atpg

// Five-valued test-generation logic (Roth's D-calculus, as PODEM
// uses): 0, 1, X (unassigned), D (good 1 / faulty 0), and D' (good 0 /
// faulty 1). A five-valued value is represented as a pair of
// three-valued values (good, faulty), and gates evaluate the pair
// componentwise in three-valued logic.

// V3 is a three-valued logic value.
type V3 uint8

// Three-valued constants.
const (
	F3 V3 = 0 // false
	T3 V3 = 1 // true
	X3 V3 = 2 // unknown
)

// V5 is a five-valued value: a (good, faulty) pair.
type V5 struct{ G, F V3 }

// The five named values.
var (
	Zero = V5{F3, F3}
	One  = V5{T3, T3}
	Xv   = V5{X3, X3}
	Dv   = V5{T3, F3} // good 1, faulty 0
	Dbar = V5{F3, T3} // good 0, faulty 1
)

// String renders a five-valued value.
func (v V5) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	case Dv:
		return "D"
	case Dbar:
		return "D'"
	case Xv:
		return "X"
	}
	return "?"
}

// IsFaultEffect reports whether v carries a D or D'.
func (v V5) IsFaultEffect() bool { return v == Dv || v == Dbar }

// and3/or3/xor3/not3 are the three-valued primitives.
func and3(a, b V3) V3 {
	if a == F3 || b == F3 {
		return F3
	}
	if a == T3 && b == T3 {
		return T3
	}
	return X3
}

func or3(a, b V3) V3 {
	if a == T3 || b == T3 {
		return T3
	}
	if a == F3 && b == F3 {
		return F3
	}
	return X3
}

func xor3(a, b V3) V3 {
	if a == X3 || b == X3 {
		return X3
	}
	if a != b {
		return T3
	}
	return F3
}

func not3(a V3) V3 {
	switch a {
	case F3:
		return T3
	case T3:
		return F3
	}
	return X3
}

// EvalGate evaluates a gate over five-valued inputs.
func EvalGate(t GateType, ins []V5) V5 {
	switch t {
	case Buf:
		return ins[0]
	case Not:
		return V5{not3(ins[0].G), not3(ins[0].F)}
	case And, Nand:
		out := One
		for _, v := range ins {
			out = V5{and3(out.G, v.G), and3(out.F, v.F)}
		}
		if t == Nand {
			out = V5{not3(out.G), not3(out.F)}
		}
		return out
	case Or, Nor:
		out := Zero
		for _, v := range ins {
			out = V5{or3(out.G, v.G), or3(out.F, v.F)}
		}
		if t == Nor {
			out = V5{not3(out.G), not3(out.F)}
		}
		return out
	case Xor:
		out := Zero
		for _, v := range ins {
			out = V5{xor3(out.G, v.G), xor3(out.F, v.F)}
		}
		return out
	}
	panic("atpg: EvalGate on input line")
}

// ControllingValue reports the controlling input value of a gate type
// (the value that determines the output alone) and whether the gate
// inverts. Xor has no controlling value (ok=false).
func ControllingValue(t GateType) (v V3, inverts, ok bool) {
	switch t {
	case And:
		return F3, false, true
	case Nand:
		return F3, true, true
	case Or:
		return T3, false, true
	case Nor:
		return T3, true, true
	case Not:
		return X3, true, false
	case Buf:
		return X3, false, false
	}
	return X3, false, false
}

// Simulate5 runs five-valued simulation with the given primary input
// assignment (three-valued) and the fault injected. The result has one
// V5 per line. gateEvals, if non-nil, accumulates the number of gate
// evaluations for CPU accounting.
func Simulate5(c *Circuit, inputs []V3, fault Fault, gateEvals *int64) []V5 {
	vals := make([]V5, c.Lines())
	var buf [8]V5
	for li := 0; li < c.Lines(); li++ {
		var v V5
		if li < c.NumInputs {
			g := inputs[li]
			v = V5{g, g}
		} else {
			g := c.Gates[li]
			ins := buf[:0]
			for _, in := range g.Ins {
				ins = append(ins, vals[in])
			}
			v = EvalGate(g.Type, ins)
			if gateEvals != nil {
				*gateEvals++
			}
		}
		if li == fault.Line {
			// Stuck line: the faulty component is pinned.
			want := V3(F3)
			if fault.StuckAt == 1 {
				want = T3
			}
			v = V5{v.G, want}
		}
		vals[li] = v
	}
	return vals
}

// SimulateGood runs plain binary simulation (inputs must be 0/1) and
// returns one V3 per line.
func SimulateGood(c *Circuit, inputs []V3, gateEvals *int64) []V3 {
	vals := make([]V3, c.Lines())
	var buf [8]V5
	for li := 0; li < c.Lines(); li++ {
		if li < c.NumInputs {
			vals[li] = inputs[li]
			continue
		}
		g := c.Gates[li]
		ins := buf[:0]
		for _, in := range g.Ins {
			ins = append(ins, V5{vals[in], vals[in]})
		}
		out := EvalGate(g.Type, ins)
		vals[li] = out.G
		if gateEvals != nil {
			*gateEvals++
		}
	}
	return vals
}

// DetectedBy reports whether pattern (binary input values) detects the
// fault: some primary output differs between the good and the faulty
// circuit.
func DetectedBy(c *Circuit, pattern []V3, fault Fault, gateEvals *int64) bool {
	vals := Simulate5(c, pattern, fault, gateEvals)
	for _, out := range c.Outputs {
		if vals[out].IsFaultEffect() {
			return true
		}
	}
	return false
}
